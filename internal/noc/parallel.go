package noc

// The deterministic parallel cycle kernel.
//
// The mesh is partitioned into contiguous row stripes ("lanes"); node IDs
// are row-major, so each lane owns a contiguous router-ID range and, via
// the router arena, a contiguous block of hot state. Every cycle runs in
// three phases:
//
//	phase A (parallel): per lane, injection then RC/VA/SA/ST for the
//	  lane's routers. Cross-lane interactions in this phase are confined
//	  to single-writer slots — the credit tally (op.pending, written only
//	  by the downstream router's lane) and per-link counters (written only
//	  by the upstream router's lane) — plus read-only shared state.
//	phase B (parallel, after a barrier): per lane, link traversal. Each
//	  router's input buffers receive pushes only from its owning lane;
//	  deliveries crossing a lane boundary are deferred to the lane's
//	  outbox.
//	serial tail: finishCycle merges all deferred cross-lane effects in
//	  lane order — outbox deliveries, credit drains, telemetry flushes,
//	  movement/in-flight folds — then compacts the active sets.
//
// Determinism argument, in short: within a phase, lanes touch disjoint or
// single-writer state, so the interleaving cannot affect values; everything
// that is order-sensitive is deferred and merged in fixed lane order; and
// every statistics accumulator is integer-valued with commutative updates
// (sums, min/max, histogram buckets), so per-lane sharding plus an ordered
// merge reproduces the serial totals exactly. Partition boundaries
// therefore cannot affect results either, which is what makes Workers=0
// (GOMAXPROCS-many lanes) safe to use in reproducible experiments.

import (
	"runtime"
	"slices"

	"gpgpunoc/internal/packet"
	"gpgpunoc/internal/stats"
)

// delivery is one deferred cross-domain link traversal: the flit sits in
// op's link register until the serial tail commits it downstream.
type delivery struct {
	rt *router
	op *outPort
}

// lane is one spatial domain of the cycle kernel: the routers and nodes
// with IDs in [lo, hi), their active sets, and every per-domain accumulator
// that would otherwise be shared across workers. A single lane spanning the
// whole mesh is the serial kernel.
type lane struct {
	lo, hi int // owned node-ID range [lo, hi)

	// Active sets: dense ID lists of this lane's routers with work and
	// nodes with queued injections. Sorted ascending at the top of the
	// router phase so iteration order matches the reference full scan;
	// compacted by the serial tail when the work drains.
	active    []int32
	injActive []int32

	// k and dense carry the router phase's iteration decision over to the
	// link phase: the sorted-prefix snapshot length, or a dense scan.
	k     int
	dense bool

	// creditDirty lists output ports with credits returned this cycle by
	// this lane's routers (accumulated in outPort.pending); the serial
	// tail drains lanes in order.
	creditDirty []*outPort

	// outbox defers link deliveries that cross the lane boundary.
	outbox []delivery

	// stats is the lane's private shard of order-sensitive accumulators
	// (injection/ejection counts, latency samplers); Network.Stats folds
	// shards in lane order. Single-writer link-flit counters stay on the
	// shared collector.
	stats *stats.Net

	// Stall-attribution tallies and deferred per-packet latency
	// observations, flushed into the shared telemetry probes by the
	// serial tail.
	stallVCAlloc int64
	stallCredit  int64
	stallRoute   int64
	ejected      []*packet.Packet

	moved        bool // any flit moved in this lane this cycle
	ejectedFlits int  // flits ejected this cycle (in-flight delta)
}

// effectiveDomains resolves the Workers configuration to a lane count:
// 0 means GOMAXPROCS, and the count is clamped to the mesh height since
// domains are row stripes. Because partition boundaries cannot affect
// results (see the package comment above), a GOMAXPROCS-derived count is
// still reproducible.
func effectiveDomains(workers, height int) int {
	d := workers
	if d <= 0 {
		d = runtime.GOMAXPROCS(0)
	}
	if d > height {
		d = height
	}
	if d < 1 {
		d = 1
	}
	return d
}

// buildLanes partitions the mesh into row stripes. Every lane is non-empty
// (the domain count is clamped to the height) and covers whole rows, so
// lane ID ranges are contiguous and ascending.
func (n *Network) buildLanes(workers, width, height int) {
	d := effectiveDomains(workers, height)
	n.lanes = make([]lane, d)
	n.laneOf = make([]int32, n.numNodes)
	for i := range n.lanes {
		ln := &n.lanes[i]
		ln.lo = (i * height / d) * width
		ln.hi = ((i + 1) * height / d) * width
		ln.stats = stats.NewNet(n.m)
		for id := ln.lo; id < ln.hi; id++ {
			n.laneOf[id] = int32(i)
		}
	}
}

// injectPhase drains injection queues for the lane's nodes, ascending.
// Sparse sets are sorted and walked directly; once a set covers a quarter
// of the lane, a full ascending scan through the same emptiness gate is
// cheaper than sorting, and visits the same nodes in the same order.
//
//noclint:hotpath root: per-cycle injection phase of the cycle kernel
func (n *Network) injectPhase(ln *lane) {
	ln.moved = false
	if len(ln.injActive)*4 >= ln.hi-ln.lo {
		for id := ln.lo; id < ln.hi; id++ {
			if !n.inj[id].empty() {
				n.injectNode(ln, id)
			}
		}
	} else {
		slices.Sort(ln.injActive)
		for _, id := range ln.injActive {
			n.injectNode(ln, int(id))
		}
	}
}

// routerPhase runs RC/VA/SA/ST for the lane's active routers, ascending.
// The sort happens after injection so routers woken by this cycle's
// injected flits are visited, exactly as the reference scan would.
//
//noclint:hotpath root: per-cycle router step (RC/VA/SA/ST)
func (n *Network) routerPhase(ln *lane) {
	ln.dense = len(ln.active)*4 >= ln.hi-ln.lo
	if ln.dense {
		// Dense: the gates (bufFlits, regCount) are live counters, so this
		// is the reference loop minus its no-op visits.
		for i := ln.lo; i < ln.hi; i++ {
			rt := &n.routers[i]
			if rt.bufFlits == 0 {
				continue
			}
			n.routeCompute(rt)
			n.vcAllocate(rt)
			n.switchAllocateAndTraverse(ln, rt)
		}
	} else {
		// Sparse: snapshot the sorted active prefix; wakes during the
		// phases append routers that, by construction, have no switch work
		// or link register to process this cycle.
		slices.Sort(ln.active)
		ln.k = len(ln.active)
		for i := 0; i < ln.k; i++ {
			rt := &n.routers[ln.active[i]]
			if rt.bufFlits == 0 {
				continue // only a link register in flight; nothing to arbitrate
			}
			n.routeCompute(rt)
			n.vcAllocate(rt)
			n.switchAllocateAndTraverse(ln, rt)
		}
	}
}

// linkPhaseLane delivers completed link traversals for the lane's routers,
// walking the same snapshot the router phase used.
//
//noclint:hotpath root: per-cycle link traversal phase
func (n *Network) linkPhaseLane(ln *lane) {
	if ln.dense {
		for i := ln.lo; i < ln.hi; i++ {
			rt := &n.routers[i]
			if rt.regCount > 0 {
				n.linkPhase(ln, rt)
			}
		}
	} else {
		for i := 0; i < ln.k; i++ {
			rt := &n.routers[ln.active[i]]
			if rt.regCount > 0 {
				n.linkPhase(ln, rt)
			}
		}
	}
}

// phaseA is a worker's compute phase: injection then router pipelines for
// one lane.
func (n *Network) phaseA(ln *lane) {
	n.injectPhase(ln)
	n.routerPhase(ln)
}

// foldStats drains every lane's stats shard into the shared collector in
// lane order. All sampler updates are integer sums, mins, maxes, and bucket
// counts, so the fold reproduces exactly what serial accumulation would
// have produced.
func (n *Network) foldStats() {
	for li := range n.lanes {
		src := n.lanes[li].stats
		for t := 0; t < packet.NumTypes; t++ {
			n.stats.InjectedPackets[t] += src.InjectedPackets[t]
			n.stats.InjectedFlits[t] += src.InjectedFlits[t]
			n.stats.EjectedPackets[t] += src.EjectedPackets[t]
			n.stats.EjectedFlits[t] += src.EjectedFlits[t]
			src.InjectedPackets[t] = 0
			src.InjectedFlits[t] = 0
			src.EjectedPackets[t] = 0
			src.EjectedFlits[t] = 0
		}
		for c := 0; c < packet.NumClasses; c++ {
			n.stats.TotalLatency[c].Merge(&src.TotalLatency[c])
			n.stats.NetLatency[c].Merge(&src.NetLatency[c])
			src.TotalLatency[c] = stats.Sampler{}
			src.NetLatency[c] = stats.Sampler{}
		}
	}
}

// workerPool runs lanes 1..N-1 on persistent goroutines; lane 0 always runs
// on the stepping goroutine. Channel handshakes provide the cycle-boundary
// barriers (and, via Go's channel memory model, the happens-before edges
// that publish one phase's writes to the next).
type workerPool struct {
	start []chan struct{} // per worker: begin phase A
	bGo   []chan struct{} // per worker: begin phase B
	aDone chan struct{}   // one token per worker after phase A
	bDone chan struct{}   // one token per worker after phase B
}

func newWorkerPool(n *Network) *workerPool {
	w := len(n.lanes) - 1
	p := &workerPool{
		start: make([]chan struct{}, w),
		bGo:   make([]chan struct{}, w),
		aDone: make(chan struct{}, w),
		bDone: make(chan struct{}, w),
	}
	for i := 0; i < w; i++ {
		p.start[i] = make(chan struct{}, 1)
		p.bGo[i] = make(chan struct{}, 1)
		// Scheduling order across lane goroutines cannot affect results:
		// phases touch disjoint or single-writer state and every
		// cross-lane effect is merged in fixed lane order by finishCycle.
		go p.worker(n, i+1) //noclint:determinism lanes are race-free by ownership; all cross-lane effects merge in fixed lane order in finishCycle
	}
	return p
}

func (p *workerPool) worker(n *Network, li int) {
	ln := &n.lanes[li]
	for range p.start[li-1] {
		n.phaseA(ln)
		p.aDone <- struct{}{}
		<-p.bGo[li-1]
		n.linkPhaseLane(ln)
		p.bDone <- struct{}{}
	}
}

// stop terminates the worker goroutines. Must be called at a cycle
// boundary, when every worker is parked on its start channel.
func (p *workerPool) stop() {
	for _, c := range p.start {
		close(c)
	}
}

// stepParallel advances one cycle with the lanes on the worker pool: kick
// every worker's phase A, run lane 0's phase A inline, barrier; same for
// phase B; then the serial tail.
func (n *Network) stepParallel() {
	if n.pool == nil {
		n.pool = newWorkerPool(n)
	}
	p := n.pool
	for _, c := range p.start {
		c <- struct{}{}
	}
	n.phaseA(&n.lanes[0])
	for range p.start {
		<-p.aDone
	}
	for _, c := range p.bGo {
		c <- struct{}{}
	}
	n.linkPhaseLane(&n.lanes[0])
	for range p.bGo {
		<-p.bDone
	}
	n.finishCycle()
}
