package noc

import (
	"testing"

	"gpgpunoc/internal/config"
	"gpgpunoc/internal/mesh"
	"gpgpunoc/internal/packet"
	"gpgpunoc/internal/routing"
	"gpgpunoc/internal/vc"
)

// newRebalanceNet is newWorkerNet with lane retiling enabled.
func newRebalanceNet(t testing.TB, workers int, epoch int64) *Network {
	t.Helper()
	if workers != 1 {
		forcePool(t)
	}
	cfg := config.Default().NoC
	cfg.Workers = workers
	cfg.RebalanceEpoch = epoch
	n := New(cfg, routing.MustNew(cfg.Routing), vc.MustNewPolicy(cfg))
	n.EnableStats(true)
	t.Cleanup(n.Close)
	return n
}

// TestRebalanceEquivalence: retiling is a pure performance knob — runs with
// rebalancing at any worker count must be bit-identical to the serial
// kernel without it, under the same load and refusal schedule the parallel
// equivalence test uses.
func TestRebalanceEquivalence(t *testing.T) {
	base := newWorkerNet(t, config.RoutingXY, config.VCSplit, 1)
	driveLoad(t, base, 900, 7, true)
	bs := base.Stats()
	for _, w := range []int{1, 2, 4, 8} {
		n := newRebalanceNet(t, w, 50)
		driveLoad(t, n, 900, 7, true)
		if n.FlitsInFlight() != base.FlitsInFlight() {
			t.Errorf("workers=%d: in-flight %d, serial %d", w, n.FlitsInFlight(), base.FlitsInFlight())
		}
		s := n.Stats()
		if s.InjectedPackets != bs.InjectedPackets || s.EjectedPackets != bs.EjectedPackets ||
			s.InjectedFlits != bs.InjectedFlits || s.EjectedFlits != bs.EjectedFlits {
			t.Errorf("workers=%d: packet accounting diverged", w)
		}
		for c := 0; c < packet.NumClasses; c++ {
			if s.TotalLatency[c] != bs.TotalLatency[c] || s.NetLatency[c] != bs.NetLatency[c] {
				t.Errorf("workers=%d: class %d latency accumulators diverged", w, c)
			}
			for i := range s.LinkFlits[c] {
				if s.LinkFlits[c][i] != bs.LinkFlits[c][i] {
					t.Fatalf("workers=%d: class %d link %d flit counts diverged", w, c, i)
				}
			}
		}
		if !n.Drain(5000) {
			t.Fatalf("workers=%d failed to drain", w)
		}
	}
}

// TestRebalanceMovesBoundaries drives traffic confined to the top rows and
// requires the retile to actually shrink the hot lane — otherwise the knob
// is dead code — while preserving the lane-tiling invariant (checked both
// directly and via CheckInvariants, which sanitized runs sample).
func TestRebalanceMovesBoundaries(t *testing.T) {
	n := newRebalanceNet(t, 4, 32)
	nn := n.Mesh().NumNodes()
	for i := 0; i < nn; i++ {
		n.SetSink(mesh.NodeID(i), func(packet.Flit) bool { return true })
	}
	uniform := make([]int, len(n.lanes))
	for i := range n.lanes {
		uniform[i] = n.lanes[i].lo
	}
	id := uint64(0)
	moved := false
	for c := 0; c < 400; c++ {
		// All traffic inside rows 0-1: the load estimate should hand the
		// idle bottom rows to fewer, wider lanes.
		for k := 0; k < 4; k++ {
			id++
			n.Inject(&packet.Packet{
				ID: id, Type: packet.ReadReply,
				Src: int(id) % 16, Dst: int(id*7) % 16,
				Flits: packet.LongFlits, CreatedAt: n.Cycle(),
			})
		}
		n.Step()
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		for i := range n.lanes {
			if n.lanes[i].lo != uniform[i] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("skewed load never moved a lane boundary")
	}
	if !n.Drain(5000) {
		t.Fatal("failed to drain after retiles")
	}
}

// TestRebalanceValidation pins the config gate.
func TestRebalanceValidation(t *testing.T) {
	cfg := config.Default()
	cfg.NoC.RebalanceEpoch = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative rebalance epoch accepted")
	}
}
