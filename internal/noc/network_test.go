package noc

import (
	"testing"

	"gpgpunoc/internal/config"
	"gpgpunoc/internal/mesh"
	"gpgpunoc/internal/packet"
	"gpgpunoc/internal/rng"
	"gpgpunoc/internal/routing"
	"gpgpunoc/internal/vc"
)

func newTestNet(t testing.TB, rt config.Routing, pol config.VCPolicy, opts ...Option) *Network {
	t.Helper()
	cfg := config.Default().NoC
	cfg.Routing = rt
	cfg.VCPolicy = pol
	n := New(cfg, routing.MustNew(rt), vc.MustNewPolicy(cfg), opts...)
	n.EnableStats(true)
	return n
}

// collector is a sink that records delivered packets per node.
type collector struct {
	packets []*packet.Packet
	flits   int
}

func (c *collector) sink(f packet.Flit) bool {
	c.flits++
	if f.Tail {
		c.packets = append(c.packets, f.Pkt)
	}
	return true
}

func attachCollectors(n *Network) []*collector {
	cs := make([]*collector, n.Mesh().NumNodes())
	for i := range cs {
		cs[i] = &collector{}
		n.SetSink(mesh.NodeID(i), cs[i].sink)
	}
	return cs
}

func mkPacket(id uint64, typ packet.Type, src, dst mesh.NodeID, at int64) *packet.Packet {
	return &packet.Packet{
		ID: id, Type: typ, Src: int(src), Dst: int(dst),
		Flits: packet.Length(typ), CreatedAt: at,
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	cs := attachCollectors(n)
	src, dst := mesh.NodeID(0), mesh.NodeID(63)
	p := mkPacket(1, packet.ReadReply, src, dst, 0)
	if !n.Inject(p) {
		t.Fatal("injection refused on an empty network")
	}
	if !n.Drain(1000) {
		t.Fatalf("packet did not drain; %d flits in flight", n.FlitsInFlight())
	}
	if len(cs[dst].packets) != 1 || cs[dst].packets[0] != p {
		t.Fatalf("destination got %d packets", len(cs[dst].packets))
	}
	if cs[dst].flits != 5 {
		t.Errorf("destination got %d flits, want 5", cs[dst].flits)
	}
	for i, c := range cs {
		if mesh.NodeID(i) != dst && len(c.packets) > 0 {
			t.Errorf("node %d wrongly received a packet", i)
		}
	}
	// Zero-load latency sanity: 14 hops x 2-cycle router, plus ejection,
	// injection and 4 extra serialization flits. Allow slack but catch
	// gross regressions.
	lat := p.EjectedAt - p.InjectedAt
	if lat < 14*2 || lat > 14*2+20 {
		t.Errorf("zero-load latency = %d cycles for 14 hops, want ~[28, 48]", lat)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSelfDelivery(t *testing.T) {
	// A packet whose source is its destination ejects through the local
	// port without touching the mesh.
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	cs := attachCollectors(n)
	p := mkPacket(1, packet.ReadRequest, 5, 5, 0)
	n.Inject(p)
	if !n.Drain(100) {
		t.Fatal("self-addressed packet stuck")
	}
	if len(cs[5].packets) != 1 {
		t.Fatal("self-addressed packet not delivered")
	}
	if _, cnt := n.Stats().HottestLink(); cnt != 0 {
		t.Errorf("self delivery used %d link traversals, want 0", cnt)
	}
}

func TestFlitOrderingPreserved(t *testing.T) {
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	var seqs []int
	n.SetSink(63, func(f packet.Flit) bool {
		seqs = append(seqs, f.Seq)
		return true
	})
	for i := mesh.NodeID(0); int(i) < 63; i++ {
		n.SetSink(i, func(packet.Flit) bool { return true })
	}
	n.Inject(mkPacket(1, packet.ReadReply, 0, 63, 0))
	n.Drain(1000)
	if len(seqs) != 5 {
		t.Fatalf("got %d flits", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("flit order violated: %v", seqs)
		}
	}
}

func TestManyPacketsConservationAndDeterminism(t *testing.T) {
	run := func(seed uint64) (delivered int, hot int64) {
		n := newTestNet(t, config.RoutingXY, config.VCSplit)
		cs := attachCollectors(n)
		r := rng.New(seed)
		id := uint64(0)
		for cycle := 0; cycle < 2000; cycle++ {
			// Random request/reply traffic from random nodes.
			for k := 0; k < 4; k++ {
				src := mesh.NodeID(r.Intn(64))
				dst := mesh.NodeID(r.Intn(64))
				typ := packet.Type(r.Intn(int(packet.NumTypes)))
				id++
				n.Inject(mkPacket(id, typ, src, dst, n.Cycle()))
			}
			n.Step()
			if cycle%500 == 0 {
				if err := n.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !n.Drain(20000) {
			t.Fatalf("network did not drain: %d flits stuck", n.FlitsInFlight())
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, c := range cs {
			delivered += len(c.packets)
		}
		_, hot = n.Stats().HottestLink()
		return delivered, hot
	}
	d1, h1 := run(42)
	d2, h2 := run(42)
	if d1 != d2 || h1 != h2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", d1, h1, d2, h2)
	}
	if d1 == 0 {
		t.Error("no packets delivered")
	}
}

func TestInjectionBackpressure(t *testing.T) {
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	attachCollectors(n)
	// Fill node 0's injection queue (capacity 16 flits) without stepping.
	accepted := 0
	for i := 0; i < 100; i++ {
		if n.Inject(mkPacket(uint64(i), packet.ReadReply, 0, 63, 0)) {
			accepted++
		}
	}
	if accepted != 3 { // 3 x 5 flits = 15 <= 16; a 4th does not fit
		t.Errorf("accepted %d packets into a 16-flit queue, want 3", accepted)
	}
	if n.InjectSpace(0) != 1 {
		t.Errorf("InjectSpace = %d, want 1", n.InjectSpace(0))
	}
	if !n.Drain(2000) {
		t.Fatal("queued packets did not drain")
	}
}

func TestSinkRefusalBackpressure(t *testing.T) {
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	for i := 0; i < 64; i++ {
		n.SetSink(mesh.NodeID(i), func(packet.Flit) bool { return true })
	}
	// Node 63 refuses everything until released.
	accepting := false
	got := 0
	n.SetSink(63, func(f packet.Flit) bool {
		if !accepting {
			return false
		}
		got++
		return true
	})
	for i := 0; i < 3; i++ {
		n.Inject(mkPacket(uint64(i), packet.ReadReply, 0, 63, 0))
	}
	for i := 0; i < 500; i++ {
		n.Step()
	}
	if got != 0 {
		t.Fatal("sink received flits while refusing")
	}
	if n.FlitsInFlight() == 0 {
		t.Fatal("flits should be parked in the network under sink backpressure")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	accepting = true
	if !n.Drain(2000) {
		t.Fatalf("network did not drain after sink release: %d left", n.FlitsInFlight())
	}
	if got != 15 {
		t.Errorf("sink got %d flits, want 15", got)
	}
}

// TestVCPolicyRespected inspects router state: under the split policy,
// request flits only ever occupy request VCs on mesh links and replies only
// reply VCs.
func TestVCPolicyRespected(t *testing.T) {
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	attachCollectors(n)
	r := rng.New(7)
	id := uint64(0)
	reqRange := n.pol.RangeFor(mesh.Link{From: 0, Dir: mesh.East}, mesh.Horizontal, packet.Request)
	for cycle := 0; cycle < 1500; cycle++ {
		for k := 0; k < 3; k++ {
			id++
			typ := packet.ReadRequest
			if r.Bool(0.5) {
				typ = packet.ReadReply
			}
			n.Inject(mkPacket(id, typ, mesh.NodeID(r.Intn(64)), mesh.NodeID(r.Intn(64)), n.Cycle()))
		}
		n.Step()
		for i := range n.routers {
			rt := &n.routers[i]
			for p := 0; p < mesh.NumPorts-1; p++ { // mesh input ports only
				for v := range rt.in[p] {
					buf := &rt.in[p][v].buf
					for k := 0; k < buf.len(); k++ {
						bf := buf.buf[(buf.head+k)%len(buf.buf)]
						isReq := bf.flit.Pkt.Class() == packet.Request
						if isReq != reqRange.Contains(v) {
							t.Fatalf("cycle %d: %s flit in VC %d at router %d port %d violates split",
								cycle, bf.flit.Pkt.Class(), v, i, p)
						}
					}
				}
			}
		}
	}
}

func TestAllRoutingsDeliverEverything(t *testing.T) {
	for _, rt := range config.Routings() {
		n := newTestNet(t, rt, config.VCSplit)
		cs := attachCollectors(n)
		id := uint64(0)
		want := 0
		r := rng.New(99)
		for cycle := 0; cycle < 1000; cycle++ {
			id++
			typ := packet.Type(r.Intn(int(packet.NumTypes)))
			if n.Inject(mkPacket(id, typ, mesh.NodeID(r.Intn(64)), mesh.NodeID(r.Intn(64)), n.Cycle())) {
				want++
			}
			n.Step()
		}
		if !n.Drain(20000) {
			t.Fatalf("%s: did not drain", rt)
		}
		got := 0
		for _, c := range cs {
			got += len(c.packets)
		}
		if got != want {
			t.Errorf("%s: delivered %d of %d packets", rt, got, want)
		}
	}
}

func TestMonopolizedUsesAllVCs(t *testing.T) {
	// With the monopolized policy on bottom+XY-like traffic (single class
	// per link), replies must be able to occupy both VCs of a port.
	n := newTestNet(t, config.RoutingXY, config.VCMonopolized)
	attachCollectors(n)
	// Two bottom-row nodes flood replies into column 0: node 57's replies
	// route west to (7,0) and merge with node 56's own replies on the
	// (7,0)->North link, demanding 2 flits/cycle from a 1 flit/cycle link.
	// The backlog forces concurrent packets onto different VCs.
	id := uint64(0)
	sawHighVC := false
	for cycle := 0; cycle < 600; cycle++ {
		id++
		n.Inject(mkPacket(id, packet.ReadReply, 56, mesh.NodeID((id%7)*8), n.Cycle()))
		id++
		n.Inject(mkPacket(id, packet.ReadReply, 57, mesh.NodeID((id%7)*8), n.Cycle()))
		n.Step()
		rt := &n.routers[48] // node directly north of 56
		for v := range rt.in[mesh.South] {
			if v >= n.vcs/2 && rt.in[mesh.South][v].buf.len() > 0 {
				sawHighVC = true
			}
		}
	}
	if !sawHighVC {
		t.Error("monopolized policy never used the upper VC half for replies")
	}
}

func TestSplitConfinesReplies(t *testing.T) {
	// Control for TestMonopolizedUsesAllVCs: under split, replies never
	// appear in the request half.
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	attachCollectors(n)
	id := uint64(0)
	for cycle := 0; cycle < 600; cycle++ {
		id++
		n.Inject(mkPacket(id, packet.ReadReply, 56, mesh.NodeID((id%7)*8), n.Cycle()))
		id++
		n.Inject(mkPacket(id, packet.ReadReply, 57, mesh.NodeID((id%7)*8), n.Cycle()))
		n.Step()
		rt := &n.routers[48]
		for v := 0; v < n.vcs/2; v++ {
			if rt.in[mesh.South][v].buf.len() > 0 {
				t.Fatal("reply flit in a request VC under the split policy")
			}
		}
	}
}

func TestDualNetworkSeparation(t *testing.T) {
	cfg := config.Default().NoC
	cfg.VCsPerPort = 2
	d := NewDual(cfg, routing.MustNew(config.RoutingXY))
	d.EnableStats(true)
	got := map[packet.Class]int{}
	for i := 0; i < 64; i++ {
		i := i
		d.SetSink(mesh.NodeID(i), func(f packet.Flit) bool {
			if f.Tail {
				got[f.Pkt.Class()]++
			}
			return true
		})
	}
	d.Inject(mkPacket(1, packet.ReadRequest, 0, 63, 0))
	d.Inject(mkPacket(2, packet.ReadReply, 63, 0, 0))
	for i := 0; i < 200; i++ {
		d.Step()
	}
	if d.FlitsInFlight() != 0 {
		t.Fatal("dual network did not drain")
	}
	if got[packet.Request] != 1 || got[packet.Reply] != 1 {
		t.Errorf("deliveries = %v", got)
	}
	// The request subnet must carry no reply flits and vice versa.
	if d.request.Stats().ClassFlits(packet.Reply) != 0 {
		t.Error("reply flits on the request subnet")
	}
	if d.reply.Stats().ClassFlits(packet.Request) != 0 {
		t.Error("request flits on the reply subnet")
	}
	m := d.Stats()
	if m.EjectedPackets[packet.ReadRequest] != 1 || m.EjectedPackets[packet.ReadReply] != 1 {
		t.Error("merged stats missing deliveries")
	}
}

func TestLinkStatsMatchRoute(t *testing.T) {
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	attachCollectors(n)
	p := mkPacket(1, packet.ReadRequest, 0, 63, 0)
	n.Inject(p)
	n.Drain(1000)
	// XY from (0,0) to (7,7): east along row 0, then south down column 7.
	for _, l := range routing.Path(n.Mesh(), n.alg, 0, 63, packet.Request) {
		idx := n.Mesh().LinkIndex(l)
		if n.Stats().LinkFlits[packet.Request][idx] != 1 {
			t.Errorf("link %v traversals = %d, want 1", l, n.Stats().LinkFlits[packet.Request][idx])
		}
	}
	var total int64
	for _, c := range n.Stats().LinkFlits[packet.Request] {
		total += c
	}
	if total != 14 {
		t.Errorf("total link traversals = %d, want 14", total)
	}
}

func TestQuiescentDetection(t *testing.T) {
	n := newTestNet(t, config.RoutingXY, config.VCSplit)
	// No sinks anywhere: a delivered packet can never eject, so the
	// network wedges — exactly what Quiescent must detect. (A nil sink
	// marks the node as refusing; only reaching ejection panics.)
	for i := 0; i < 64; i++ {
		n.SetSink(mesh.NodeID(i), nil)
	}
	n.Inject(mkPacket(1, packet.ReadRequest, 0, 63, 0))
	for i := 0; i < 300; i++ {
		n.Step()
	}
	if !n.Quiescent(100) {
		t.Error("watchdog failed to flag a wedged network")
	}
	n2 := newTestNet(t, config.RoutingXY, config.VCSplit)
	attachCollectors(n2)
	if n2.Quiescent(1) {
		t.Error("empty network reported quiescent-with-flits")
	}
}
