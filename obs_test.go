// Observability-equivalence suite: span tracing and live exposition must be
// pure observers. Attaching spans at rate 0 must leave every simulation
// result bit-identical to a run without spans; at rate 1 the per-packet
// span decomposition must agree exactly with the telemetry latency
// histograms, which compute the same four segments from packet timestamps
// through a completely different path; and the HTTP endpoints must serve
// consistent snapshots while the simulation is running (exercised under
// `go test -race`).
package gpgpunoc_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpgpunoc/internal/config"
	"gpgpunoc/internal/gpu"
	"gpgpunoc/internal/obs"
	"gpgpunoc/internal/telemetry"
	"gpgpunoc/internal/workload"
)

func obsCfg() config.Config {
	cfg := config.Default()
	cfg.WarmupCycles = 400
	cfg.MeasureCycles = 1600
	return cfg
}

func newSim(t *testing.T, cfg config.Config, bench string, inst gpu.Instrumentation) *gpu.Simulator {
	t.Helper()
	prof, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gpu.NewInstrumented(cfg, prof, inst)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Close)
	return sim
}

// TestSpanRateZeroMatchesDisabled pins the zero-overhead-when-off contract
// on a Figure 9 scheme: a run with the span collector attached at rate 0
// must be bit-identical — IPC, GPU counters, and the full network stats
// including floating-point latency accumulators — to a run without it.
func TestSpanRateZeroMatchesDisabled(t *testing.T) {
	cfg := obsCfg()
	cfg.Placement = config.PlacementBottom
	cfg.NoC.Routing = config.RoutingYX

	plain := newSim(t, cfg, "KMN", gpu.Instrumentation{})
	resPlain := plain.Run()

	traced := newSim(t, cfg, "KMN", gpu.Instrumentation{Spans: true})
	resTraced := traced.Run()

	if resPlain.IPC != resTraced.IPC {
		t.Errorf("IPC diverged: %v vs %v", resPlain.IPC, resTraced.IPC)
	}
	if resPlain.GPU != resTraced.GPU {
		t.Errorf("GPU counters diverged:\n%+v\n%+v", resPlain.GPU, resTraced.GPU)
	}
	if !reflect.DeepEqual(resPlain.Net, resTraced.Net) {
		t.Error("network stats diverged between rate-0 and disabled runs")
	}
	if resTraced.Spans.NumTraces() != 0 {
		t.Errorf("rate 0 traced %d packets", resTraced.Spans.NumTraces())
	}
}

// TestSpanSegmentsMatchTelemetry cross-checks the two latency paths at
// sample rate 1: the telemetry histograms decompose each transaction from
// timestamps the packets carry, while the span transactions recompute the
// same four segments from recorded event cycles. Count and sum must agree
// exactly, per transaction kind and segment.
func TestSpanSegmentsMatchTelemetry(t *testing.T) {
	sim := newSim(t, obsCfg(), "KMN", gpu.Instrumentation{TelemetryEpoch: 400, Spans: true, SpanRate: 1})
	tel := sim.Tel
	res := sim.Run()

	type agg struct {
		count int64
		sum   [4]int64
	}
	byKind := map[string]*agg{"read": {}, "write": {}}
	complete := 0
	for _, x := range res.Spans.Transactions() {
		if !x.Complete {
			continue
		}
		complete++
		kind := "write"
		if x.Read {
			kind = "read"
		}
		a := byKind[kind]
		a.count++
		for i, s := range x.Segments {
			a.sum[i] += s
		}
	}
	if complete == 0 {
		t.Fatal("no complete transactions at rate 1; the run produced no traffic")
	}

	for kind, a := range byKind {
		for seg := telemetry.Segment(0); seg < telemetry.NumSegments; seg++ {
			h := tel.Reg.FindHistogram(fmt.Sprintf("latency.%s.%s", kind, seg))
			if h == nil {
				t.Fatalf("no histogram latency.%s.%s", kind, seg)
			}
			if h.Count() != a.count {
				t.Errorf("latency.%s.%s: telemetry count %d, spans %d", kind, seg, h.Count(), a.count)
			}
			if h.Sum() != a.sum[seg] {
				t.Errorf("latency.%s.%s: telemetry sum %d, spans %d", kind, seg, h.Sum(), a.sum[seg])
			}
		}
	}
}

// TestObsEndpointsMidRun polls /metrics, /state and /progress from a
// separate goroutine while the simulation runs. Under -race this proves the
// publish/serve split is sound, and every /state snapshot must pass the
// flit-conservation check — a torn read of the kernel would fail it.
func TestObsEndpointsMidRun(t *testing.T) {
	cfg := obsCfg()
	cfg.MeasureCycles = 20000 // long enough that polls land mid-run
	srv, err := obs.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sim := newSim(t, cfg, "KMN", gpu.Instrumentation{Obs: srv, PublishEvery: 200})
	base := "http://" + srv.Addr()

	done := make(chan gpu.Result, 1)
	go func() { done <- sim.Run() }()

	fetch := func(ep string) (int, []byte) {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Errorf("GET %s: %v", ep, err)
			return 0, nil
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	polls, stateChecks := 0, 0
	var sawMidRun bool
	for {
		select {
		case res := <-done:
			if polls == 0 {
				t.Fatal("simulation finished before a single poll")
			}
			if !sawMidRun {
				t.Log("warning: no poll observed a mid-run snapshot; machine too fast for this run length")
			}
			if res.Deadlocked {
				t.Fatal("run deadlocked")
			}
			// After the final publish the endpoints still serve the
			// completed run.
			if code, body := fetch("/progress"); code != http.StatusOK || !strings.Contains(string(body), `"phase":"done"`) {
				t.Fatalf("final /progress = %d %s", code, body)
			}
			if stateChecks == 0 {
				t.Fatal("no /state snapshot was conservation-checked")
			}
			return
		default:
		}
		polls++
		if code, body := fetch("/metrics"); code != http.StatusOK || !strings.Contains(string(body), "noc_") {
			t.Fatalf("/metrics = %d %q...", code, truncate(body, 80))
		}
		code, body := fetch("/state")
		if code != http.StatusOK {
			t.Fatalf("/state = %d", code)
		}
		var st obs.MeshState
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("/state is not a MeshState: %v", err)
		}
		if err := st.CheckConservation(); err != nil {
			t.Fatalf("mid-run /state snapshot inconsistent: %v", err)
		}
		stateChecks++
		if st.Cycle > 0 && st.Cycle < int64(cfg.WarmupCycles+cfg.MeasureCycles) {
			sawMidRun = true
		}
		if code, body := fetch("/progress"); code != http.StatusOK || !strings.Contains(string(body), `"cycle"`) {
			t.Fatalf("/progress = %d %q...", code, truncate(body, 80))
		}
		time.Sleep(time.Millisecond)
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
