GO ?= go
SMOKE_OUT := $(shell mktemp -u /tmp/sweep-smoke.XXXXXX.jsonl)
TELEMETRY_DEMO_OUT ?= telemetry-demo

PROFILE_OUT ?= profiles
BENCH_JSON ?= BENCH_PR4.json

.PHONY: check lint vet build test race smoke bench-smoke telemetry-demo profile bench-json clean

# check is the full pre-merge gate: static analysis, build, race-enabled
# tests, an end-to-end smoke sweep through cmd/sweep, and a one-iteration
# compile-and-run pass over every benchmark.
check: lint build race smoke bench-smoke

# lint is all static analysis: go vet plus the repository's own analyzers
# (determinism, seedflow, paniclint — see internal/lint).
lint: vet
	$(GO) run ./cmd/noclint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke runs the 4-job example spec through the real CLI and engine,
# then re-runs it against the same output to prove resume skips all 4.
smoke:
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	@rm -f $(SMOKE_OUT)

# bench-smoke compiles and runs every benchmark exactly once — it catches
# bit-rotted benches without paying for real measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# telemetry-demo produces the paper's bottom-vs-diamond link-load contrast
# as telemetry artifacts: two instrumented runs whose heatmap.csv files
# show the MC-edge concentration (bottom) against the spread-out diamond.
telemetry-demo:
	$(GO) run ./cmd/nocsim -bench KMN -placement bottom \
		-telemetry-epoch 1000 -telemetry-out $(TELEMETRY_DEMO_OUT)/bottom
	$(GO) run ./cmd/nocsim -bench KMN -placement diamond \
		-telemetry-epoch 1000 -telemetry-out $(TELEMETRY_DEMO_OUT)/diamond
	@echo "artifacts in $(TELEMETRY_DEMO_OUT)/{bottom,diamond}/{series.jsonl,heatmap.csv,trace.json}"

# bench-json measures the headline cycle-kernel benchmarks — full-GPU cycle
# under the active-set and reference steppers, plus the saturated router
# step — as 8 fixed-iteration runs each, and writes the min/median/max
# summary to $(BENCH_JSON) via cmd/benchjson. Fixed iterations + medians
# make the file meaningful to diff between commits on the same machine.
bench-json:
	$(GO) test -run '^$$' \
		-bench '^(BenchmarkGPUCycle|BenchmarkGPUCycleReference|BenchmarkRouterStep)$$' \
		-benchtime 20000x -count 8 . | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# profile captures CPU and allocation profiles of a representative run:
# one full-GPU simulation on the heaviest benchmark. Inspect with
#   go tool pprof -top $(PROFILE_OUT)/nocsim.cpu
# (see README "Profiling" for how to read them against the cycle kernel).
profile:
	@mkdir -p $(PROFILE_OUT)
	$(GO) run ./cmd/nocsim -bench KMN -cycles 200000 \
		-cpuprofile $(PROFILE_OUT)/nocsim.cpu -memprofile $(PROFILE_OUT)/nocsim.mem >/dev/null
	@echo "profiles in $(PROFILE_OUT)/nocsim.{cpu,mem}"

clean:
	$(GO) clean ./...
