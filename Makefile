GO ?= go
SMOKE_OUT := $(shell mktemp -u /tmp/sweep-smoke.XXXXXX.jsonl)
TELEMETRY_DEMO_OUT ?= telemetry-demo

PROFILE_OUT ?= profiles
BENCH_JSON ?= BENCH_PR6.json
BENCH_BASELINE ?= BENCH_PR6.json
BENCH_DIFF_JSON := $(shell mktemp -u /tmp/bench-diff.XXXXXX.json)
OBS_DEMO_ADDR ?= 127.0.0.1:9177

.PHONY: check lint vet build test race smoke bench-smoke telemetry-demo profile bench-json bench-diff obs-demo clean

# check is the full pre-merge gate: static analysis, build, race-enabled
# tests, an end-to-end smoke sweep through cmd/sweep, and a one-iteration
# compile-and-run pass over every benchmark. bench-diff is advisory (the
# leading dash): it re-measures the headline benchmarks and prints the
# delta against the committed baseline, but machine noise means a red row
# is a prompt to investigate, not a build failure.
check: lint build race smoke bench-smoke
	-$(MAKE) bench-diff

# lint is all static analysis: go vet plus the repository's own analyzers
# (determinism, seedflow, paniclint, laneowner, hotpath, publish — see
# internal/lint). The -max-elapsed budget keeps the from-source typecheck
# fast enough to live in the edit-check loop; raise NOCLINT_BUDGET if a
# slow machine trips it.
NOCLINT_BUDGET ?= 120s
lint: vet
	$(GO) run ./cmd/noclint -max-elapsed $(NOCLINT_BUDGET)

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke runs the 4-job example spec through the real CLI and engine,
# then re-runs it against the same output to prove resume skips all 4.
smoke:
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	@rm -f $(SMOKE_OUT)

# bench-smoke compiles and runs every benchmark exactly once — it catches
# bit-rotted benches without paying for real measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# telemetry-demo produces the paper's bottom-vs-diamond link-load contrast
# as telemetry artifacts: two instrumented runs whose heatmap.csv files
# show the MC-edge concentration (bottom) against the spread-out diamond.
telemetry-demo:
	$(GO) run ./cmd/nocsim -bench KMN -placement bottom \
		-telemetry-epoch 1000 -telemetry-out $(TELEMETRY_DEMO_OUT)/bottom
	$(GO) run ./cmd/nocsim -bench KMN -placement diamond \
		-telemetry-epoch 1000 -telemetry-out $(TELEMETRY_DEMO_OUT)/diamond
	@echo "artifacts in $(TELEMETRY_DEMO_OUT)/{bottom,diamond}/{series.jsonl,heatmap.csv,trace.json}"

# bench-json measures the headline cycle-kernel benchmarks — full-GPU cycle
# under the active-set and reference steppers, the 16×16 large mesh at each
# worker count, plus the saturated router step — as 8 fixed-iteration runs
# each, and writes the min/median/max summary to $(BENCH_JSON) via
# cmd/benchjson. Fixed iterations + medians make the file meaningful to
# diff between commits on the same machine.
bench-json:
	$(GO) test -run '^$$' \
		-bench '^(BenchmarkGPUCycle|BenchmarkGPUCycleReference|BenchmarkGPUCycleLarge|BenchmarkRouterStep)$$' \
		-benchtime 20000x -count 8 . | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# bench-diff re-measures the headline benchmarks and compares median ns/op
# against the committed baseline (BENCH_BASELINE) with a ±5% noise band.
# Exit status is the comparison verdict: non-zero when any benchmark
# regressed beyond the band or vanished from the new run.
bench-diff:
	$(MAKE) bench-json BENCH_JSON=$(BENCH_DIFF_JSON)
	$(GO) run ./cmd/benchjson diff -baseline $(BENCH_BASELINE) \
		-new $(BENCH_DIFF_JSON) -fail-on-regress
	@rm -f $(BENCH_DIFF_JSON)

# obs-demo shows the live observability surface: a real run with the HTTP
# server up, scraped once per endpoint mid-flight. See README
# "Live observability".
obs-demo:
	$(GO) run ./cmd/nocsim -bench KMN -cycles 2000000 -telemetry-epoch 1000 \
		-obs-addr $(OBS_DEMO_ADDR) -obs-publish 500 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(OBS_DEMO_ADDR)/healthz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	echo "--- /progress ---"; curl -fsS http://$(OBS_DEMO_ADDR)/progress; echo; \
	echo "--- /metrics (head) ---"; curl -fsS http://$(OBS_DEMO_ADDR)/metrics | head -20; \
	echo "--- /state (head) ---"; curl -fsS http://$(OBS_DEMO_ADDR)/state | head -c 400; echo; \
	wait $$pid

# profile captures CPU and allocation profiles of a representative run:
# one full-GPU simulation on the heaviest benchmark. Inspect with
#   go tool pprof -top $(PROFILE_OUT)/nocsim.cpu
# (see README "Profiling" for how to read them against the cycle kernel).
profile:
	@mkdir -p $(PROFILE_OUT)
	$(GO) run ./cmd/nocsim -bench KMN -cycles 200000 \
		-cpuprofile $(PROFILE_OUT)/nocsim.cpu -memprofile $(PROFILE_OUT)/nocsim.mem >/dev/null
	@echo "profiles in $(PROFILE_OUT)/nocsim.{cpu,mem}"

clean:
	$(GO) clean ./...
