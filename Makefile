GO ?= go
SMOKE_OUT := $(shell mktemp -u /tmp/sweep-smoke.XXXXXX.jsonl)
TELEMETRY_DEMO_OUT ?= telemetry-demo

PROFILE_OUT ?= profiles
FABRIC_ADDR ?= 127.0.0.1:9178
FABRIC_TMP := $(shell mktemp -u /tmp/fabric-smoke.XXXXXX)
BENCH_JSON ?= BENCH_PR9.json
BENCH_BASELINE ?= BENCH_PR9.json
BENCH_DIFF_JSON := $(shell mktemp -u /tmp/bench-diff.XXXXXX.json)
OBS_DEMO_ADDR ?= 127.0.0.1:9177

.PHONY: check lint vet build test race smoke fabric-smoke bench-smoke telemetry-demo profile bench-json bench-diff obs-demo clean

# check is the full pre-merge gate: static analysis, build, race-enabled
# tests, an end-to-end smoke sweep through cmd/sweep, and a one-iteration
# compile-and-run pass over every benchmark. bench-diff is advisory (the
# leading dash): it re-measures the headline benchmarks and prints the
# delta against the committed baseline, but machine noise means a red row
# is a prompt to investigate, not a build failure.
check: lint build race smoke bench-smoke
	-$(MAKE) bench-diff

# lint is all static analysis: go vet plus the repository's own analyzers
# (determinism, seedflow, paniclint, laneowner, hotpath, publish — see
# internal/lint). The -max-elapsed budget keeps the from-source typecheck
# fast enough to live in the edit-check loop; raise NOCLINT_BUDGET if a
# slow machine trips it.
NOCLINT_BUDGET ?= 120s
lint: vet
	$(GO) run ./cmd/noclint -max-elapsed $(NOCLINT_BUDGET)

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke runs the 4-job example spec through the real CLI and engine,
# then re-runs it against the same output to prove resume skips all 4.
smoke:
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	@rm -f $(SMOKE_OUT)

# fabric-smoke proves the distributed sweep fabric end-to-end: a
# single-process reference run (-ordered), then a coordinator with two
# workers over the same spec — one worker killed mid-run so its lease
# expires and its jobs are re-queued — and a canonical-form diff of the two
# JSONL outputs (the exec footprint legitimately differs per mode; the
# simulated results must not). The kill-one leg is also the fleet
# observability probe: /metrics must show the lease expiry, the timeline
# endpoint must answer, and the coordinator must leave a flight-recorder
# dump. Finally the coordinator is killed and restarted on the same store
# directory: resubmitting the identical spec must be answered entirely from
# the content-addressed store (0 pending, store-hit series non-zero).
fabric-smoke:
	@mkdir -p $(FABRIC_TMP)
	$(GO) build -o $(FABRIC_TMP)/sweep ./cmd/sweep
	$(FABRIC_TMP)/sweep -spec examples/sweepspec_smoke.json -out $(FABRIC_TMP)/single.jsonl -ordered
	@set -e; \
	$(FABRIC_TMP)/sweep -serve $(FABRIC_ADDR) -store $(FABRIC_TMP)/store \
		-flight-dir $(FABRIC_TMP)/flight \
		-lease-jobs 1 -lease-ttl 3s -heartbeat 500ms & coord=$$!; \
	w1=; w2=; trap 'kill $$coord $$w1 $$w2 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(FABRIC_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	$(FABRIC_TMP)/sweep -connect http://$(FABRIC_ADDR) & w1=$$!; \
	$(FABRIC_TMP)/sweep -connect http://$(FABRIC_ADDR) & w2=$$!; \
	id=$$(curl -fsS -X POST --data-binary @examples/sweepspec_smoke.json \
		http://$(FABRIC_ADDR)/submit | sed 's/.*"sweep_id":"\([^"]*\)".*/\1/'); \
	echo "sweep $$id submitted"; \
	sleep 0.5; kill -9 $$w1 2>/dev/null || true; echo "killed worker 1 mid-run"; \
	for i in $$(seq 1 240); do \
		curl -fsS http://$(FABRIC_ADDR)/sweeps/$$id | grep -q '"status":"done"' && break; \
		sleep 0.5; \
	done; \
	curl -fsS http://$(FABRIC_ADDR)/sweeps/$$id | grep -q '"status":"done"' \
		|| { echo "fabric-smoke: sweep never finished"; exit 1; }; \
	curl -fsS http://$(FABRIC_ADDR)/sweeps/$$id/results > $(FABRIC_TMP)/fabric.jsonl; \
	sed -E 's/,"exec":\{[^}]*\}//' $(FABRIC_TMP)/single.jsonl > $(FABRIC_TMP)/single.canon.jsonl; \
	sed -E 's/,"exec":\{[^}]*\}//' $(FABRIC_TMP)/fabric.jsonl > $(FABRIC_TMP)/fabric.canon.jsonl; \
	cmp $(FABRIC_TMP)/single.canon.jsonl $(FABRIC_TMP)/fabric.canon.jsonl \
		|| { echo "fabric-smoke: distributed output differs from single-process"; exit 1; }; \
	echo "fabric output canonically identical to single-process ($$(wc -c < $(FABRIC_TMP)/fabric.canon.jsonl) bytes)"; \
	grep -q '"exec":{' $(FABRIC_TMP)/fabric.jsonl \
		|| { echo "fabric-smoke: records carry no exec footprint"; exit 1; }; \
	grep -q '"worker":"w' $(FABRIC_TMP)/fabric.jsonl \
		|| { echo "fabric-smoke: records carry no worker attribution"; exit 1; }; \
	curl -fsS http://$(FABRIC_ADDR)/metrics | grep -Eq '^fleet_leases_expired_total [1-9]' \
		|| { echo "fabric-smoke: /metrics shows no lease expiry after kill"; exit 1; }; \
	echo "lease expiry visible in /metrics"; \
	curl -fsS http://$(FABRIC_ADDR)/sweeps/$$id/timeline | grep -q '"spans"' \
		|| { echo "fabric-smoke: timeline endpoint returned no spans"; exit 1; }; \
	test -s $(FABRIC_TMP)/flight/coordinator-lease-expiry.flight.jsonl \
		|| { echo "fabric-smoke: no coordinator flight dump after lease expiry"; exit 1; }; \
	echo "timeline served; flight dump present"; \
	kill $$coord 2>/dev/null || true; wait $$coord 2>/dev/null || true; \
	$(FABRIC_TMP)/sweep -serve $(FABRIC_ADDR) -store $(FABRIC_TMP)/store \
		-flight-dir $(FABRIC_TMP)/flight \
		-lease-jobs 1 -lease-ttl 3s -heartbeat 500ms & coord=$$!; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(FABRIC_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -fsS -X POST --data-binary @examples/sweepspec_smoke.json http://$(FABRIC_ADDR)/submit \
		| grep -q '"pending":0' \
		|| { echo "fabric-smoke: resubmit was not served from the store"; exit 1; }; \
	curl -fsS http://$(FABRIC_ADDR)/metrics | grep -Eq '^fleet_store_hits_total [1-9]' \
		|| { echo "fabric-smoke: restarted coordinator shows no store hits"; exit 1; }; \
	echo "resubmit served entirely from store (store-hit series non-zero)"
	@rm -rf $(FABRIC_TMP)

# bench-smoke compiles and runs every benchmark exactly once — it catches
# bit-rotted benches without paying for real measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# telemetry-demo produces the paper's bottom-vs-diamond link-load contrast
# as telemetry artifacts: two instrumented runs whose heatmap.csv files
# show the MC-edge concentration (bottom) against the spread-out diamond.
telemetry-demo:
	$(GO) run ./cmd/nocsim -bench KMN -placement bottom \
		-telemetry-epoch 1000 -telemetry-out $(TELEMETRY_DEMO_OUT)/bottom
	$(GO) run ./cmd/nocsim -bench KMN -placement diamond \
		-telemetry-epoch 1000 -telemetry-out $(TELEMETRY_DEMO_OUT)/diamond
	@echo "artifacts in $(TELEMETRY_DEMO_OUT)/{bottom,diamond}/{series.jsonl,heatmap.csv,trace.json}"

# bench-json measures the headline cycle-kernel benchmarks — full-GPU cycle
# under the active-set and reference steppers, the 16×16 large mesh at each
# worker count, plus the saturated router step — as 8 fixed-iteration runs
# each, and writes the min/median/max summary to $(BENCH_JSON) via
# cmd/benchjson. Fixed iterations + medians make the file meaningful to
# diff between commits on the same machine.
bench-json:
	$(GO) test -run '^$$' \
		-bench '^(BenchmarkGPUCycle|BenchmarkGPUCycleReference|BenchmarkGPUCycleLarge|BenchmarkRouterStep)$$' \
		-benchtime 20000x -count 8 . | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# bench-diff re-measures the headline benchmarks and compares median ns/op
# against the committed baseline (BENCH_BASELINE) with a ±5% noise band.
# Exit status is the comparison verdict: non-zero when any benchmark
# regressed beyond the band or vanished from the new run.
bench-diff:
	$(MAKE) bench-json BENCH_JSON=$(BENCH_DIFF_JSON)
	$(GO) run ./cmd/benchjson diff -baseline $(BENCH_BASELINE) \
		-new $(BENCH_DIFF_JSON) -fail-on-regress
	@rm -f $(BENCH_DIFF_JSON)

# obs-demo shows the live observability surface: a real run with the HTTP
# server up, scraped once per endpoint mid-flight. See README
# "Live observability".
obs-demo:
	$(GO) run ./cmd/nocsim -bench KMN -cycles 2000000 -telemetry-epoch 1000 \
		-obs-addr $(OBS_DEMO_ADDR) -obs-publish 500 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(OBS_DEMO_ADDR)/healthz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	echo "--- /progress ---"; curl -fsS http://$(OBS_DEMO_ADDR)/progress; echo; \
	echo "--- /metrics (head) ---"; curl -fsS http://$(OBS_DEMO_ADDR)/metrics | head -20; \
	echo "--- /state (head) ---"; curl -fsS http://$(OBS_DEMO_ADDR)/state | head -c 400; echo; \
	wait $$pid

# profile captures CPU and allocation profiles of a representative run:
# one full-GPU simulation on the heaviest benchmark. Inspect with
#   go tool pprof -top $(PROFILE_OUT)/nocsim.cpu
# (see README "Profiling" for how to read them against the cycle kernel).
profile:
	@mkdir -p $(PROFILE_OUT)
	$(GO) run ./cmd/nocsim -bench KMN -cycles 200000 \
		-cpuprofile $(PROFILE_OUT)/nocsim.cpu -memprofile $(PROFILE_OUT)/nocsim.mem >/dev/null
	@echo "profiles in $(PROFILE_OUT)/nocsim.{cpu,mem}"

clean:
	$(GO) clean ./...
