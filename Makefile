GO ?= go
SMOKE_OUT := $(shell mktemp -u /tmp/sweep-smoke.XXXXXX.jsonl)

.PHONY: check lint vet build test race smoke clean

# check is the full pre-merge gate: static analysis, build, race-enabled
# tests, and an end-to-end smoke sweep through cmd/sweep.
check: lint build race smoke

# lint is all static analysis: go vet plus the repository's own analyzers
# (determinism, seedflow, paniclint — see internal/lint).
lint: vet
	$(GO) run ./cmd/noclint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke runs the 4-job example spec through the real CLI and engine,
# then re-runs it against the same output to prove resume skips all 4.
smoke:
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	@rm -f $(SMOKE_OUT)

clean:
	$(GO) clean ./...
