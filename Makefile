GO ?= go
SMOKE_OUT := $(shell mktemp -u /tmp/sweep-smoke.XXXXXX.jsonl)
TELEMETRY_DEMO_OUT ?= telemetry-demo

.PHONY: check lint vet build test race smoke bench-smoke telemetry-demo clean

# check is the full pre-merge gate: static analysis, build, race-enabled
# tests, an end-to-end smoke sweep through cmd/sweep, and a one-iteration
# compile-and-run pass over every benchmark.
check: lint build race smoke bench-smoke

# lint is all static analysis: go vet plus the repository's own analyzers
# (determinism, seedflow, paniclint — see internal/lint).
lint: vet
	$(GO) run ./cmd/noclint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke runs the 4-job example spec through the real CLI and engine,
# then re-runs it against the same output to prove resume skips all 4.
smoke:
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	$(GO) run ./cmd/sweep -spec examples/sweepspec_smoke.json -out $(SMOKE_OUT)
	@rm -f $(SMOKE_OUT)

# bench-smoke compiles and runs every benchmark exactly once — it catches
# bit-rotted benches without paying for real measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# telemetry-demo produces the paper's bottom-vs-diamond link-load contrast
# as telemetry artifacts: two instrumented runs whose heatmap.csv files
# show the MC-edge concentration (bottom) against the spread-out diamond.
telemetry-demo:
	$(GO) run ./cmd/nocsim -bench KMN -placement bottom \
		-telemetry-epoch 1000 -telemetry-out $(TELEMETRY_DEMO_OUT)/bottom
	$(GO) run ./cmd/nocsim -bench KMN -placement diamond \
		-telemetry-epoch 1000 -telemetry-out $(TELEMETRY_DEMO_OUT)/diamond
	@echo "artifacts in $(TELEMETRY_DEMO_OUT)/{bottom,diamond}/{series.jsonl,heatmap.csv,trace.json}"

clean:
	$(GO) clean ./...
