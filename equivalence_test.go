// Stepper-equivalence suite: the event-sparse active-set cycle kernel must
// be indistinguishable from the naive full-scan reference stepper — not
// statistically close, bit-identical — and the parallel kernel must be
// indistinguishable from both at every worker count. Anything less means
// the active set dropped a wakeup, an arbitration got reordered, or a
// cross-domain merge ran out of order, and every derived result (figure
// tables, latency distributions, telemetry) silently drifts.
//
// Coverage: the eight Figure 9 schemes (every placement, routing, and VC
// policy family) × three seeds × workers ∈ {1, 2, 4, 8}, plus the dual
// physical subnets with full- and half-width channels, each compared on
// IPC, cycle count, the complete stats.Net (including floating-point
// Welford latency accumulators, which pin the ejection order), and the
// full telemetry JSONL export. Runs are sanitized, so CheckInvariants —
// including the active-set invariant — is exercised under the optimized
// path throughout.
package gpgpunoc_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"gpgpunoc/internal/config"
	"gpgpunoc/internal/core"
	"gpgpunoc/internal/experiments"
	"gpgpunoc/internal/gpu"
	"gpgpunoc/internal/workload"
)

// forcePool keeps the multi-worker comparisons honest on a one-core
// machine: networks built on a single-P runtime step their lanes inline
// (bit-identical, see noc.Network's poolOK), which would quietly remove
// the worker pool — and everything the race detector learns from it —
// from this suite. Bumping GOMAXPROCS before construction restores the
// real concurrent kernel; results cannot depend on it.
func forcePool(t testing.TB) {
	if runtime.GOMAXPROCS(0) > 1 {
		return
	}
	old := runtime.GOMAXPROCS(2)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// equivCfg is a reduced-scale configuration: long enough that traffic
// saturates the MC rows and backpressure (the active set's hard case)
// appears, short enough that the whole suite stays in seconds.
func equivCfg() config.Config {
	cfg := config.Default()
	cfg.WarmupCycles = 400
	cfg.MeasureCycles = 1600
	return cfg
}

// runOne runs the benchmark instrumented (telemetry every 400 cycles) and
// sanitized (invariants every 256 cycles) with the given kernel worker
// count (0 keeps cfg's).
func runOne(t *testing.T, cfg config.Config, bench string, workers int) gpu.Result {
	t.Helper()
	if workers > 1 {
		forcePool(t)
	}
	res, err := gpu.Run(context.Background(), cfg, bench, gpu.RunOptions{
		SanitizeEvery:  256,
		TelemetryEpoch: 400,
		Workers:        workers,
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// runBoth runs the same benchmark under both steppers.
func runBoth(t *testing.T, cfg config.Config, bench string) (opt, ref gpu.Result) {
	t.Helper()
	run := func(reference bool) gpu.Result {
		c := cfg
		c.NoC.ReferenceStepper = reference
		return runOne(t, c, bench, 0)
	}
	return run(false), run(true)
}

// checkWorkers runs the benchmark at workers ∈ {2, 4, 8} and requires each
// run bit-identical to the single-threaded baseline.
func checkWorkers(t *testing.T, cfg config.Config, bench string, base gpu.Result) {
	t.Helper()
	for _, w := range []int{2, 4, 8} {
		res := runOne(t, cfg, bench, w)
		compareResults(t, res, base)
	}
}

// compareResults asserts bit-identical observable state between the two
// steppers.
func compareResults(t *testing.T, opt, ref gpu.Result) {
	t.Helper()
	if opt.IPC != ref.IPC {
		t.Errorf("IPC diverged: active-set %v, reference %v", opt.IPC, ref.IPC)
	}
	if opt.Cycles != ref.Cycles || opt.Deadlocked != ref.Deadlocked {
		t.Errorf("run shape diverged: cycles %d/%d, deadlocked %v/%v",
			opt.Cycles, ref.Cycles, opt.Deadlocked, ref.Deadlocked)
	}
	if !reflect.DeepEqual(opt.GPU, ref.GPU) {
		t.Errorf("GPU stats diverged")
	}
	if !reflect.DeepEqual(opt.Net, ref.Net) {
		t.Errorf("network stats diverged (latency accumulators are order-sensitive: check ejection ordering)")
	}
	var ob, rb bytes.Buffer
	if err := opt.Tel.WriteJSONL(&ob); err != nil {
		t.Fatal(err)
	}
	if err := ref.Tel.WriteJSONL(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ob.Bytes(), rb.Bytes()) {
		t.Errorf("telemetry export diverged (%d vs %d bytes)", ob.Len(), rb.Len())
	}
}

// TestStepperEquivalenceFig9Schemes covers the full Figure 9 design space,
// three seeds each: active-set vs reference stepper, then the parallel
// kernel at workers ∈ {2, 4, 8} against the single-threaded run.
func TestStepperEquivalenceFig9Schemes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed design-space sweep")
	}
	for _, s := range experiments.Fig9Schemes() {
		for _, seed := range []uint64{1, 7, 1234577} {
			t.Run(fmt.Sprintf("%s/seed=%d", s.Label, seed), func(t *testing.T) {
				t.Parallel()
				cfg := s.Apply(equivCfg())
				cfg.Seed = seed
				opt, ref := runBoth(t, cfg, "KMN")
				compareResults(t, opt, ref)
				checkWorkers(t, cfg, "KMN", opt)
			})
		}
	}
}

// TestStepperEquivalenceDual covers the two-physical-subnets design, with
// full-width and half-width (linkPeriod=2) channels.
func TestStepperEquivalenceDual(t *testing.T) {
	for _, half := range []bool{false, true} {
		t.Run(fmt.Sprintf("halfwidth=%v", half), func(t *testing.T) {
			t.Parallel()
			cfg := equivCfg()
			cfg.NoC.PhysicalSubnets = true
			cfg.NoC.SubnetHalfWidth = half
			cfg.NoC.VCsPerPort = 4 // 2 per subnet
			opt, ref := runBoth(t, cfg, "RED")
			compareResults(t, opt, ref)
			compareResults(t, runOne(t, cfg, "RED", 4), opt)
		})
	}
}

// TestStepperEquivalenceAsymmetric covers the Figure 10 asymmetric VC
// partition (1 request : 3 reply), which stresses uneven per-class ranges
// in the precomputed injection and link VC tables.
func TestStepperEquivalenceAsymmetric(t *testing.T) {
	cfg := equivCfg()
	cfg.NoC.VCsPerPort = 4
	cfg.NoC.Routing = config.RoutingXYYX
	cfg.NoC.VCPolicy = config.VCAsymmetric
	opt, ref := runBoth(t, cfg, "BFS")
	compareResults(t, opt, ref)
	compareResults(t, runOne(t, cfg, "BFS", 4), opt)
}

// TestFigureTableEquivalence regenerates a figure table under the parallel
// active-set kernel and under the reference stepper and requires the
// rendered tables to be byte-identical — the property that makes the
// regenerated EXPERIMENTS.md trustworthy regardless of worker count or
// kernel.
func TestFigureTableEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates a figure grid twice")
	}
	base := experiments.Opts{
		Benchmarks:    []string{"KMN", "RED"},
		WarmupCycles:  400,
		MeasureCycles: 1600,
	}
	refTrue := true
	ref := base
	ref.Parallel = 1
	ref.Overrides = config.Overrides{ReferenceStepper: &refTrue}

	optTab, err := experiments.Fig7(base)
	if err != nil {
		t.Fatal(err)
	}
	refTab, err := experiments.Fig7(ref)
	if err != nil {
		t.Fatal(err)
	}
	if optTab.String() != refTab.String() {
		t.Errorf("Fig7 table diverged between kernels:\nactive-set:\n%s\nreference:\n%s", optTab, refTab)
	}

	// The synthetic-harness sweep exercises the custom RunFunc path.
	optSweep, err := experiments.Sweep(experiments.Opts{MeasureCycles: 1500})
	if err != nil {
		t.Fatal(err)
	}
	refSweep, err := experiments.Sweep(experiments.Opts{MeasureCycles: 1500, Parallel: 1, Overrides: config.Overrides{ReferenceStepper: &refTrue}})
	if err != nil {
		t.Fatal(err)
	}
	if optSweep.String() != refSweep.String() {
		t.Errorf("Sweep table diverged between kernels:\nactive-set:\n%s\nreference:\n%s", optSweep, refSweep)
	}
}

// idleProfile is a pure-compute workload with long deterministic sleeps:
// every warp issues one 600-cycle op per wakeup and the system generates no
// memory traffic at all, so the fabric stays empty and most cycles are
// globally idle — the case fast-forward exists for.
func idleProfile() workload.Profile {
	return workload.Profile{
		Name: "IDLE", Suite: "synthetic",
		Locality: 0.5, FootprintBytes: 256 << 10,
		RunAhead: 4, LongOpFraction: 1, LongOpLatency: 600,
	}
}

// trickleProfile sleeps like idleProfile but issues occasional loads, so
// idle spans interleave with real NoC/MC/DRAM activity — the case that
// exercises the service-token and stall compensation at span edges.
func trickleProfile() workload.Profile {
	return workload.Profile{
		Name: "TRICKLE", Suite: "synthetic",
		MemFraction: 0.03, Locality: 0.6, FootprintBytes: 1 << 20,
		RunAhead: 2, LongOpFraction: 1, LongOpLatency: 900,
	}
}

// runProfile runs an unregistered profile on a full instrumented simulator
// (telemetry every 400 cycles, sanitizer every 256) and returns the result
// plus the cycles fast-forward skipped.
func runProfile(t *testing.T, cfg config.Config, prof workload.Profile, workers int, ff bool) (gpu.Result, int64) {
	t.Helper()
	c := cfg
	if ff {
		c.FastForward = true
	}
	if workers > 0 {
		c.NoC.Workers = workers
	}
	if c.NoC.Workers > 1 {
		forcePool(t)
	}
	sim, err := gpu.NewInstrumented(c, prof, gpu.Instrumentation{TelemetryEpoch: 400})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.SanitizeEvery = 256
	res, err := sim.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, sim.FastForwarded
}

// TestStepperEquivalenceFastForward covers the full Figure 9 design space,
// three seeds each, with idle-cycle fast-forward on vs off: IPC, stats, and
// telemetry bytes must be identical whether idle cycles are stepped or
// skipped.
func TestStepperEquivalenceFastForward(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed design-space sweep")
	}
	for _, s := range experiments.Fig9Schemes() {
		for _, seed := range []uint64{1, 7, 1234577} {
			t.Run(fmt.Sprintf("%s/seed=%d", s.Label, seed), func(t *testing.T) {
				t.Parallel()
				cfg := s.Apply(equivCfg())
				cfg.Seed = seed
				base := runOne(t, cfg, "KMN", 0)
				ffCfg := cfg
				ffCfg.FastForward = true
				compareResults(t, runOne(t, ffCfg, "KMN", 0), base)
			})
		}
	}
}

// TestStepperEquivalenceFastForwardIdle pins fast-forward on workloads that
// actually trigger it: a pure-compute profile (fabric always empty; the
// skip must cover most of the run) and a trickle profile whose idle spans
// border real memory traffic (exercising the span-edge compensation). Both
// must match the stepped run and the reference stepper bit-for-bit, serial
// and parallel.
func TestStepperEquivalenceFastForwardIdle(t *testing.T) {
	cfg := equivCfg()
	for _, prof := range []workload.Profile{idleProfile(), trickleProfile()} {
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			base, _ := runProfile(t, cfg, prof, 1, false)
			ff, skipped := runProfile(t, cfg, prof, 1, true)
			t.Logf("%s: fast-forwarded %d of %d cycles", prof.Name, skipped,
				cfg.WarmupCycles+cfg.MeasureCycles)
			if skipped == 0 {
				t.Fatalf("%s never fast-forwarded", prof.Name)
			}
			compareResults(t, ff, base)

			rcfg := cfg
			rcfg.NoC.ReferenceStepper = true
			ref, _ := runProfile(t, rcfg, prof, 1, false)
			compareResults(t, ff, ref)

			pff, _ := runProfile(t, cfg, prof, 4, true)
			compareResults(t, pff, base)
		})
	}
}

// TestStepperEquivalenceRebalance pins load-adaptive lane retiling as a
// pure performance knob: with retiling every 64 cycles the run must be
// bit-identical across workers ∈ {1, 2, 4, 8} and to the un-retiled serial
// kernel.
func TestStepperEquivalenceRebalance(t *testing.T) {
	cfg := equivCfg()
	cfg.NoC.RebalanceEpoch = 64
	base := runOne(t, cfg, "KMN", 1)
	for _, w := range []int{2, 4, 8} {
		compareResults(t, runOne(t, cfg, "KMN", w), base)
	}
	plain := equivCfg()
	compareResults(t, base, runOne(t, plain, "KMN", 1))
}

// TestStepperEquivalenceSoak exercises rebalancing and fast-forward
// together on the workers=4 kernel over a longer run — under -race in CI,
// this is the soak that lets the detector watch retiled lanes and barrier
// generations interleave for real — and requires bit-identity with the
// plain serial run.
func TestStepperEquivalenceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	cfg := equivCfg()
	cfg.WarmupCycles = 800
	cfg.MeasureCycles = 4000
	soak := cfg
	soak.FastForward = true
	soak.NoC.RebalanceEpoch = 96

	base := runOne(t, cfg, "KMN", 1)
	compareResults(t, runOne(t, soak, "KMN", 4), base)

	prof := idleProfile()
	pbase, _ := runProfile(t, cfg, prof, 1, false)
	sres, skipped := runProfile(t, soak, prof, 4, true)
	if skipped == 0 {
		t.Fatal("soak never fast-forwarded")
	}
	compareResults(t, sres, pbase)
}

// TestReferenceStepperFlagPlumbing ensures the -reference-stepper override
// reaches the network for single, scheme-modified, and dual configurations.
func TestReferenceStepperFlagPlumbing(t *testing.T) {
	on := true
	base := config.Default()
	cfg := config.Overrides{ReferenceStepper: &on}.Apply(base)
	if !cfg.NoC.ReferenceStepper {
		t.Fatal("override did not set NoC.ReferenceStepper")
	}
	cfg = core.BestProposed.Apply(cfg)
	if !cfg.NoC.ReferenceStepper {
		t.Fatal("scheme application dropped NoC.ReferenceStepper")
	}
}
