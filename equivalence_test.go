// Stepper-equivalence suite: the event-sparse active-set cycle kernel must
// be indistinguishable from the naive full-scan reference stepper — not
// statistically close, bit-identical — and the parallel kernel must be
// indistinguishable from both at every worker count. Anything less means
// the active set dropped a wakeup, an arbitration got reordered, or a
// cross-domain merge ran out of order, and every derived result (figure
// tables, latency distributions, telemetry) silently drifts.
//
// Coverage: the eight Figure 9 schemes (every placement, routing, and VC
// policy family) × three seeds × workers ∈ {1, 2, 4, 8}, plus the dual
// physical subnets with full- and half-width channels, each compared on
// IPC, cycle count, the complete stats.Net (including floating-point
// Welford latency accumulators, which pin the ejection order), and the
// full telemetry JSONL export. Runs are sanitized, so CheckInvariants —
// including the active-set invariant — is exercised under the optimized
// path throughout.
package gpgpunoc_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"gpgpunoc/internal/config"
	"gpgpunoc/internal/core"
	"gpgpunoc/internal/experiments"
	"gpgpunoc/internal/gpu"
)

// equivCfg is a reduced-scale configuration: long enough that traffic
// saturates the MC rows and backpressure (the active set's hard case)
// appears, short enough that the whole suite stays in seconds.
func equivCfg() config.Config {
	cfg := config.Default()
	cfg.WarmupCycles = 400
	cfg.MeasureCycles = 1600
	return cfg
}

// runOne runs the benchmark instrumented (telemetry every 400 cycles) and
// sanitized (invariants every 256 cycles) with the given kernel worker
// count (0 keeps cfg's).
func runOne(t *testing.T, cfg config.Config, bench string, workers int) gpu.Result {
	t.Helper()
	res, err := gpu.Run(context.Background(), cfg, bench, gpu.RunOptions{
		SanitizeEvery:  256,
		TelemetryEpoch: 400,
		Workers:        workers,
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// runBoth runs the same benchmark under both steppers.
func runBoth(t *testing.T, cfg config.Config, bench string) (opt, ref gpu.Result) {
	t.Helper()
	run := func(reference bool) gpu.Result {
		c := cfg
		c.NoC.ReferenceStepper = reference
		return runOne(t, c, bench, 0)
	}
	return run(false), run(true)
}

// checkWorkers runs the benchmark at workers ∈ {2, 4, 8} and requires each
// run bit-identical to the single-threaded baseline.
func checkWorkers(t *testing.T, cfg config.Config, bench string, base gpu.Result) {
	t.Helper()
	for _, w := range []int{2, 4, 8} {
		res := runOne(t, cfg, bench, w)
		compareResults(t, res, base)
	}
}

// compareResults asserts bit-identical observable state between the two
// steppers.
func compareResults(t *testing.T, opt, ref gpu.Result) {
	t.Helper()
	if opt.IPC != ref.IPC {
		t.Errorf("IPC diverged: active-set %v, reference %v", opt.IPC, ref.IPC)
	}
	if opt.Cycles != ref.Cycles || opt.Deadlocked != ref.Deadlocked {
		t.Errorf("run shape diverged: cycles %d/%d, deadlocked %v/%v",
			opt.Cycles, ref.Cycles, opt.Deadlocked, ref.Deadlocked)
	}
	if !reflect.DeepEqual(opt.GPU, ref.GPU) {
		t.Errorf("GPU stats diverged")
	}
	if !reflect.DeepEqual(opt.Net, ref.Net) {
		t.Errorf("network stats diverged (latency accumulators are order-sensitive: check ejection ordering)")
	}
	var ob, rb bytes.Buffer
	if err := opt.Tel.WriteJSONL(&ob); err != nil {
		t.Fatal(err)
	}
	if err := ref.Tel.WriteJSONL(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ob.Bytes(), rb.Bytes()) {
		t.Errorf("telemetry export diverged (%d vs %d bytes)", ob.Len(), rb.Len())
	}
}

// TestStepperEquivalenceFig9Schemes covers the full Figure 9 design space,
// three seeds each: active-set vs reference stepper, then the parallel
// kernel at workers ∈ {2, 4, 8} against the single-threaded run.
func TestStepperEquivalenceFig9Schemes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed design-space sweep")
	}
	for _, s := range experiments.Fig9Schemes() {
		for _, seed := range []uint64{1, 7, 1234577} {
			t.Run(fmt.Sprintf("%s/seed=%d", s.Label, seed), func(t *testing.T) {
				t.Parallel()
				cfg := s.Apply(equivCfg())
				cfg.Seed = seed
				opt, ref := runBoth(t, cfg, "KMN")
				compareResults(t, opt, ref)
				checkWorkers(t, cfg, "KMN", opt)
			})
		}
	}
}

// TestStepperEquivalenceDual covers the two-physical-subnets design, with
// full-width and half-width (linkPeriod=2) channels.
func TestStepperEquivalenceDual(t *testing.T) {
	for _, half := range []bool{false, true} {
		t.Run(fmt.Sprintf("halfwidth=%v", half), func(t *testing.T) {
			t.Parallel()
			cfg := equivCfg()
			cfg.NoC.PhysicalSubnets = true
			cfg.NoC.SubnetHalfWidth = half
			cfg.NoC.VCsPerPort = 4 // 2 per subnet
			opt, ref := runBoth(t, cfg, "RED")
			compareResults(t, opt, ref)
			compareResults(t, runOne(t, cfg, "RED", 4), opt)
		})
	}
}

// TestStepperEquivalenceAsymmetric covers the Figure 10 asymmetric VC
// partition (1 request : 3 reply), which stresses uneven per-class ranges
// in the precomputed injection and link VC tables.
func TestStepperEquivalenceAsymmetric(t *testing.T) {
	cfg := equivCfg()
	cfg.NoC.VCsPerPort = 4
	cfg.NoC.Routing = config.RoutingXYYX
	cfg.NoC.VCPolicy = config.VCAsymmetric
	opt, ref := runBoth(t, cfg, "BFS")
	compareResults(t, opt, ref)
	compareResults(t, runOne(t, cfg, "BFS", 4), opt)
}

// TestFigureTableEquivalence regenerates a figure table under the parallel
// active-set kernel and under the reference stepper and requires the
// rendered tables to be byte-identical — the property that makes the
// regenerated EXPERIMENTS.md trustworthy regardless of worker count or
// kernel.
func TestFigureTableEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates a figure grid twice")
	}
	base := experiments.Opts{
		Benchmarks:    []string{"KMN", "RED"},
		WarmupCycles:  400,
		MeasureCycles: 1600,
	}
	refTrue := true
	ref := base
	ref.Parallel = 1
	ref.Overrides = config.Overrides{ReferenceStepper: &refTrue}

	optTab, err := experiments.Fig7(base)
	if err != nil {
		t.Fatal(err)
	}
	refTab, err := experiments.Fig7(ref)
	if err != nil {
		t.Fatal(err)
	}
	if optTab.String() != refTab.String() {
		t.Errorf("Fig7 table diverged between kernels:\nactive-set:\n%s\nreference:\n%s", optTab, refTab)
	}

	// The synthetic-harness sweep exercises the custom RunFunc path.
	optSweep, err := experiments.Sweep(experiments.Opts{MeasureCycles: 1500})
	if err != nil {
		t.Fatal(err)
	}
	refSweep, err := experiments.Sweep(experiments.Opts{MeasureCycles: 1500, Parallel: 1, Overrides: config.Overrides{ReferenceStepper: &refTrue}})
	if err != nil {
		t.Fatal(err)
	}
	if optSweep.String() != refSweep.String() {
		t.Errorf("Sweep table diverged between kernels:\nactive-set:\n%s\nreference:\n%s", optSweep, refSweep)
	}
}

// TestReferenceStepperFlagPlumbing ensures the -reference-stepper override
// reaches the network for single, scheme-modified, and dual configurations.
func TestReferenceStepperFlagPlumbing(t *testing.T) {
	on := true
	base := config.Default()
	cfg := config.Overrides{ReferenceStepper: &on}.Apply(base)
	if !cfg.NoC.ReferenceStepper {
		t.Fatal("override did not set NoC.ReferenceStepper")
	}
	cfg = core.BestProposed.Apply(cfg)
	if !cfg.NoC.ReferenceStepper {
		t.Fatal("scheme application dropped NoC.ReferenceStepper")
	}
}
